// bench_inference: throughput benchmark for the GEMM inference engine.
//
// Measures (1) full-forward throughput of the engine vs. the retained naive
// reference kernels (gemm::set_force_naive) on a zoo conv model, and (2) the
// cost of an incremental forward_from(k) probe for every top-level layer k --
// the flip/probe primitive of the BFA family, whose cost should scale with
// the remaining depth, not the whole network.
//
// Emits machine-readable JSON (the BENCH trajectory seed): to stdout, and to
// the file named by DNND_JSON_OUT when set (the campaign sink convention).
// The JSON carries "threads" (the resolved GEMM team size) and "simd" (the
// active kernel ISA) fields so the CI DNND_THREADS x DNND_SIMD matrix
// uploads distinguishable artifacts. The explicit-SIMD kernels are A/B'd
// against the forced-scalar path (byte-identical, only wall clock moves) and
// the opt-in FMA fast path (allowed to diverge in rounding; reported
// separately and excluded from every byte gate).
//
//   DNND_BENCH_MODEL   zoo arch (default vgg11)
//   DNND_BENCH_BATCH   batch size (default 32)
//   DNND_BENCH_SCALE   small -> shorter timed windows
//   DNND_THREADS       GEMM team size (0/unset = hardware concurrency)
//   DNND_SIMD          0 = force the scalar microkernels
//   DNND_FMA           1 = fused fast path (divergent rounding allowed)
//   DNND_INT8          1 = true-integer int8 forward (requantized, NOT
//                      byte-gated against the float path; the scalar and SIMD
//                      int8 kernels ARE byte-gated against each other)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attack/bfa.hpp"
#include "bench_util.hpp"
#include "harness/sink.hpp"
#include "nn/gemm.hpp"
#include "nn/model.hpp"
#include "nn/simd.hpp"
#include "quant/quantizer.hpp"
#include "sys/env.hpp"
#include "sys/json.hpp"

using namespace dnnd;

namespace {

/// Runs `fn` repeatedly for at least `window` seconds (after one warmup call)
/// and returns the mean seconds per call.
template <typename Fn>
double time_per_call(double window, Fn&& fn) {
  fn();  // warmup: sizes the workspace, faults in pages
  usize calls = 0;
  const bench::Stopwatch sw;
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = sw.seconds();
  } while (elapsed < window);
  return elapsed / static_cast<double>(calls);
}

}  // namespace

int main() {
  const char* model_env = std::getenv("DNND_BENCH_MODEL");
  const std::string arch = model_env != nullptr && model_env[0] != '\0' ? model_env : "vgg11";
  // 0 means "use the default", matching the DNND_THREADS convention.
  usize batch = sys::env_usize("DNND_BENCH_BATCH", 32);
  if (batch == 0) batch = 32;
  const double window = bench::small_scale() ? 0.1 : 0.5;
  const usize threads = nn::gemm::threads();
  const nn::simd::Isa isa = nn::simd::active_isa();

  bench::banner("Inference engine throughput -- naive vs GEMM, incremental probes",
                "engine microbenchmark (BENCH trajectory; not a paper figure)");
  std::printf("[threads] GEMM team size: %zu\n", threads);
  std::printf("[simd] kernel ISA: %s (best supported: %s)\n", nn::simd::isa_name(isa),
              nn::simd::isa_name(nn::simd::best_isa()));

  auto model = models::make_by_name(arch, 10, /*seed=*/1);
  sys::Rng rng(99);
  nn::Tensor x({batch, 3, 12, 12});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));

  // ---- full-forward throughput, naive vs engine -----------------------------
  nn::gemm::set_force_naive(true);
  const double naive_spc = time_per_call(window, [&] { model->forward_cached(x); });
  nn::gemm::set_force_naive(false);
  const double engine_spc = time_per_call(window, [&] { model->forward_cached(x); });
  const double naive_ips = static_cast<double>(batch) / naive_spc;
  const double engine_ips = static_cast<double>(batch) / engine_spc;
  const double speedup = naive_spc / engine_spc;
  std::printf("[forward] %s batch=%zu\n", arch.c_str(), batch);
  std::printf("  naive  : %8.1f images/s (%.3f ms/batch)\n", naive_ips, naive_spc * 1e3);
  std::printf("  engine : %8.1f images/s (%.3f ms/batch)\n", engine_ips, engine_spc * 1e3);
  std::printf("  speedup: %.2fx\n", speedup);

  // ---- explicit SIMD tiles vs forced scalar, plus the FMA fast path ---------
  // The scalar leg is byte-identical to the engine leg by construction (only
  // the wall clock moves); the FMA leg may diverge in rounding and is
  // excluded from every zero-tolerance gate -- it is reported here so the
  // speed/accuracy trade is visible before anyone opts in.
  const int saved_scalar = nn::simd::scalar_override();
  const int saved_fma = nn::simd::fma_override();
  nn::simd::set_scalar_override(1);
  nn::simd::set_fma_override(0);
  const double scalar_spc = time_per_call(window, [&] { model->forward_cached(x); });
  nn::simd::set_scalar_override(0);
  const double simd_spc = time_per_call(window, [&] { model->forward_cached(x); });
  nn::simd::set_fma_override(1);
  const double fma_spc = time_per_call(window, [&] { model->forward_cached(x); });
  nn::simd::set_scalar_override(saved_scalar);
  nn::simd::set_fma_override(saved_fma);
  const double scalar_ips = static_cast<double>(batch) / scalar_spc;
  const double simd_ips = static_cast<double>(batch) / simd_spc;
  const double fma_ips = static_cast<double>(batch) / fma_spc;
  std::printf("[simd] explicit %s tiles vs forced scalar (byte-identical paths):\n",
              nn::simd::isa_name(nn::simd::best_isa()));
  std::printf("  scalar : %8.1f images/s (%.3f ms/batch)\n", scalar_ips, scalar_spc * 1e3);
  std::printf("  simd   : %8.1f images/s (%.2fx over scalar)\n", simd_ips,
              scalar_spc / simd_spc);
  std::printf("  fma    : %8.1f images/s (opt-in, divergent rounding, NOT byte-gated)\n",
              fma_ips);

  // ---- incremental probe cost per layer -------------------------------------
  // forward_from(k) recomputes layers >= k over the cached prefix; a probe at
  // the last layer should cost a small fraction of a probe at layer 0.
  const usize layers = model->net().layer_count();
  std::vector<double> probe_us(layers, 0.0);
  model->forward_cached(x);
  for (usize k = 0; k < layers; ++k) {
    const double spc = time_per_call(window / 4.0, [&] { model->forward_from(k); });
    probe_us[k] = spc * 1e6;
  }
  const double full_us = engine_spc * 1e6;
  std::printf("[forward_from] probe cost by first recomputed layer (full fwd %.0f us):\n",
              full_us);
  for (usize k = 0; k < layers; ++k) {
    std::printf("  layer %2zu %-12s %8.1f us (%.2fx of full)\n", k,
                model->net().layer(k).name().c_str(), probe_us[k], probe_us[k] / full_us);
  }

  // ---- quantized model (int8 regime A/B + one BFA step) ---------------------
  std::vector<u32> y(batch);
  for (usize i = 0; i < batch; ++i) y[i] = static_cast<u32>(i % 10);
  quant::QuantizedModel qm(*model);
  const auto clean_codes = qm.snapshot();

  // ---- true-integer int8 regime ---------------------------------------------
  // Same quantized model, two forward regimes: the float engine path over the
  // dequantized weights vs the int8 path (quantized activations x raw codes
  // into int32 accumulators, requantized once per layer). The regimes are
  // NEVER byte-gated against each other; the scalar and SIMD int8 kernels ARE
  // -- integer accumulation is exact, so any byte difference is a kernel bug.
  qm.calibrate_int8(x);
  const int saved_int8 = nn::simd::int8_override();
  nn::simd::set_int8_override(0);
  const double float_spc = time_per_call(window, [&] { model->forward_cached(x); });
  nn::simd::set_int8_override(1);
  const double int8_spc = time_per_call(window, [&] { model->forward_cached(x); });
  const double float_ips = static_cast<double>(batch) / float_spc;
  const double int8_ips = static_cast<double>(batch) / int8_spc;
  const double int8_speedup = float_spc / int8_spc;
  nn::simd::set_scalar_override(1);
  const nn::Tensor& int8_scalar_y = model->forward_cached(x);
  std::vector<float> scalar_logits(int8_scalar_y.data(),
                                   int8_scalar_y.data() + int8_scalar_y.size());
  nn::simd::set_scalar_override(0);
  const nn::Tensor& int8_simd_y = model->forward_cached(x);
  const bool int8_byte_identical =
      int8_simd_y.size() == scalar_logits.size() &&
      std::memcmp(int8_simd_y.data(), scalar_logits.data(),
                  scalar_logits.size() * sizeof(float)) == 0;
  nn::simd::set_scalar_override(saved_scalar);
  nn::simd::set_int8_override(saved_int8);
  std::printf("[int8] true-integer forward (quantized model, requantized outputs):\n");
  std::printf("  float  : %8.1f images/s (%.3f ms/batch)\n", float_ips, float_spc * 1e3);
  std::printf("  int8   : %8.1f images/s (%.2fx over float)\n", int8_ips, int8_speedup);
  std::printf("  scalar/simd int8 kernels byte-identical: %s\n",
              int8_byte_identical ? "yes" : "NO");

  // ---- one BFA step on the engine path --------------------------------------
  // End-to-end cost of the attack inner loop: gradient ranking plus candidate
  // flip/probe/unflip evaluations, all riding forward_cached/forward_from.
  attack::BfaConfig bcfg;
  bcfg.max_flips = 1;
  // Every iteration searches the same clean model: the restore undoes the
  // committed flip so timings don't drift with the iteration count (the
  // diff-aware restore rewrites only the flipped codes).
  const double step_engine = time_per_call(window, [&] {
    attack::ProgressiveBitSearch bfa(qm, x, y, bcfg);
    bfa.step({});
    qm.restore(clean_codes);
  });
  // A/B the fused int8 resident-panel path against the dequantize-
  // materialize path (panels detached: every probe forward re-packs the
  // float weights). Byte-identical results; only the wall clock moves.
  qm.set_fused(false);
  const double step_materialized = time_per_call(window, [&] {
    attack::ProgressiveBitSearch bfa(qm, x, y, bcfg);
    bfa.step({});
    qm.restore(clean_codes);
  });
  qm.set_fused(true);
  std::printf("[bfa] one progressive-bit-search step: %.2f ms fused, %.2f ms materialized\n",
              step_engine * 1e3, step_materialized * 1e3);

  // ---- JSON -----------------------------------------------------------------
  sys::JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_inference");
  w.key("model").value(arch);
  w.key("batch").value(batch);
  w.key("threads").value(threads);
  w.key("simd").value(nn::simd::isa_name(isa));
  w.key("naive_images_per_s").value(naive_ips);
  w.key("engine_images_per_s").value(engine_ips);
  w.key("speedup").value(speedup);
  w.key("scalar_images_per_s").value(scalar_ips);
  w.key("simd_images_per_s").value(simd_ips);
  w.key("simd_speedup").value(scalar_spc / simd_spc);
  w.key("fma_images_per_s").value(fma_ips);
  w.key("int8_images_per_s").value(int8_ips);
  w.key("int8_speedup").value(int8_speedup);
  w.key("int8_byte_identical").value(int8_byte_identical);
  w.key("full_forward_us").value(full_us);
  w.key("bfa_step_ms").value(step_engine * 1e3);
  w.key("bfa_step_materialized_ms").value(step_materialized * 1e3);
  w.key("forward_from_us").begin_array();
  for (usize k = 0; k < layers; ++k) {
    w.begin_object();
    w.key("layer").value(k);
    w.key("name").value(model->net().layer(k).name());
    w.key("us").value(probe_us[k]);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::printf("%s\n", w.str().c_str());
  // Persist through the shared sink protocol (DNND_JSON_OUT file or run
  // directory); the unconditional stdout print above is the legacy contract.
  std::string destination;
  switch (harness::write_document_from_env(w.str(), "inference", &destination)) {
    case harness::SinkWriteStatus::kWritten:
      std::printf("[sink] throughput JSON -> %s\n", destination.c_str());
      break;
    case harness::SinkWriteStatus::kFailed:
      return 1;
    case harness::SinkWriteStatus::kNoSink:
      break;
  }
  return 0;
}
