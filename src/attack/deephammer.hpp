// DeepHammer-style attack executor (Yao et al., USENIX Sec'20): carries a
// BFA-chosen bit flip out *through the DRAM substrate* instead of assuming
// it lands. One flip attempt =
//   1. locate the weight byte via the mapping file (white-box threat model),
//   2. memory massaging: relocate the victim row into a physical frame whose
//      cell at the target (col, bit) is flippable in the needed direction
//      (the in-simulator equivalent of DeepHammer's page-cache massaging),
//   3. double-sided hammering of the frame's neighbours until the bit flips
//      or the activation budget is exhausted -- while any active defense
//      interleaves its swaps via the post-ACT hook.
// The defense wins by refreshing/relocating the victim before any cell
// threshold is reached; the attacker tracks relocations (complete white-box)
// and re-massages, but its accumulated disturbance is gone.
#pragma once

#include "mapping/weight_mapping.hpp"
#include "rowhammer/attacker.hpp"

namespace dnnd::attack {

struct DeepHammerConfig {
  u64 act_budget_multiplier = 8;  ///< per-attempt budget = mult * T_RH ACTs
  u64 check_interval = 256;       ///< verify the target bit every N ACTs
  Picoseconds massage_cost = 500'000'000;  ///< 0.5 ms page-relocation cost
  u64 seed = 0xDEE9;
};

/// Outcome of one flip attempt.
struct FlipAttempt {
  quant::BitLocation target;
  bool success = false;
  bool massaged = false;    ///< a frame with a matching flippable cell was found
  u32 relocations_chased = 0;  ///< times the defense moved the row mid-attack
  u64 activations = 0;
  Picoseconds elapsed = 0;
};

class DeepHammerAttack {
 public:
  DeepHammerAttack(dram::DramDevice& device, rowhammer::HammerModel& model,
                   const mapping::WeightMapping& mapping, dram::RowRemapper& remap,
                   DeepHammerConfig cfg = {});

  /// The underlying hammer driver (the protected system installs the
  /// defense's post-ACT hook here).
  [[nodiscard]] rowhammer::HammerAttacker& driver() { return attacker_; }

  /// Attempts to flip `target` in DRAM. The model's quantized codes are NOT
  /// updated -- callers read back via WeightMapping::download.
  FlipAttempt attempt_flip(const quant::BitLocation& target);

  [[nodiscard]] const DeepHammerConfig& config() const { return cfg_; }

 private:
  /// Finds a physical frame (not holding weights, not reserved) whose cell at
  /// (col, bit) flips in the direction needed to flip value `bit_is_set`.
  /// Stands in for the attacker's own template cache: tests verify that
  /// HammerAttacker::template_rows discovers the same cells.
  std::optional<dram::RowAddr> find_flippable_frame(const dram::RowAddr& near, usize col,
                                                    u32 bit, bool bit_is_set);

  /// Relocates logical row `logical` into physical frame `frame` by swapping
  /// data (timed writes) and updating the remapper.
  void massage_into(const dram::RowAddr& logical, const dram::RowAddr& frame);

  dram::DramDevice& device_;
  rowhammer::HammerModel& model_;
  const mapping::WeightMapping& mapping_;
  dram::RowRemapper& remap_;
  DeepHammerConfig cfg_;
  rowhammer::HammerAttacker attacker_;
  sys::Rng rng_;
};

}  // namespace dnnd::attack
