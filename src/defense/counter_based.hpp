// Counter-based victim-refresh mitigations, unified: an activation tracker
// (per-row counters, Misra-Gries summary, counter tree, or hybrid SRAM/DRAM)
// detects hot aggressors and proactively refreshes their neighbours before
// T_RH is reached. Functionally sound even against white-box attacks, but
// they pay the tracker capacity/latency/energy overheads Table 2 itemises --
// exactly the cost DNN-Defender avoids.
//
// Presets model Graphene (MICRO'20), TWiCE (ISCA'19), Hydra (ISCA'22),
// Counter-per-Row, and Counter Tree (CAL'16).
#pragma once

#include <unordered_map>

#include "defense/mitigation.hpp"

namespace dnnd::defense {

enum class TrackerKind {
  kPerRow,      ///< one counter per row, stored in DRAM
  kMisraGries,  ///< frequent-item summary in SRAM/CAM
  kTree,        ///< counter tree in DRAM
  kHybrid,      ///< SRAM cache backed by DRAM counters (Hydra)
};

struct CounterBasedConfig {
  std::string name = "counter";
  TrackerKind tracker = TrackerKind::kMisraGries;
  double refresh_threshold_fraction = 0.25;  ///< refresh neighbours at f * T_RH
                                             ///< (double-sided pairs deposit 2/tracked ACT)
  usize table_entries = 128;                ///< tracker budget (kMisraGries/kHybrid)
  bool counters_in_dram = false;            ///< each update costs a DRAM access
};

class CounterBased : public Mitigation {
 public:
  CounterBased(dram::DramDevice& device, dram::RowRemapper& remap, CounterBasedConfig cfg);

  [[nodiscard]] std::string name() const override { return cfg_.name; }
  void on_activate(const dram::RowAddr& row, Picoseconds now) override;

  [[nodiscard]] u64 refreshes_issued() const { return refreshes_; }

  // ----- presets -----
  static CounterBasedConfig graphene();
  static CounterBasedConfig twice();
  static CounterBasedConfig hydra();
  static CounterBasedConfig counter_per_row();
  static CounterBasedConfig counter_tree();

 private:
  void refresh_neighbors(const dram::RowAddr& hot);
  u64 track(const dram::RowAddr& row);

  CounterBasedConfig cfg_;
  std::unordered_map<u64, u64> counts_;
  std::unordered_map<u32, usize> entries_per_bank_;
  u64 refreshes_ = 0;
};

}  // namespace dnnd::defense
