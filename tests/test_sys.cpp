#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "sys/energy_model.hpp"
#include "sys/env.hpp"
#include "sys/rng.hpp"
#include "sys/table.hpp"
#include "sys/types.hpp"

namespace dnnd::sys {
namespace {

using namespace dnnd::time_literals;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 4800ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.03);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(29);
  const auto idx = rng.sample_indices(50, 20);
  ASSERT_EQ(idx.size(), 20u);
  std::vector<bool> seen(50, false);
  for (usize i : idx) {
    ASSERT_LT(i, 50u);
    EXPECT_FALSE(seen[i]) << "duplicate index " << i;
    seen[i] = true;
  }
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(31);
  const auto idx = rng.sample_indices(10, 10);
  std::vector<bool> seen(10, false);
  for (usize i : idx) seen[i] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng root(41);
  Rng a = root.split("alpha");
  Rng b = root.split("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Env, ParseUsizeAcceptsCanonicalNonNegativeIntegers) {
  EXPECT_EQ(parse_usize("0"), 0u);
  EXPECT_EQ(parse_usize("8"), 8u);
  EXPECT_EQ(parse_usize("1234567"), 1234567u);
  EXPECT_EQ(parse_usize(" 12 "), 12u);   // surrounding whitespace tolerated
  EXPECT_EQ(parse_usize("\t4\n"), 4u);
  const usize max = std::numeric_limits<usize>::max();
  EXPECT_EQ(parse_usize(std::to_string(max)), max);  // exact boundary accepted
}

TEST(Env, ParseUsizeRejectsGarbageNegativeAndOverflow) {
  EXPECT_FALSE(parse_usize("").has_value());
  EXPECT_FALSE(parse_usize("   ").has_value());
  EXPECT_FALSE(parse_usize("-3").has_value());    // negative
  EXPECT_FALSE(parse_usize("+5").has_value());    // sign prefix is not canonical
  EXPECT_FALSE(parse_usize("4x").has_value());    // trailing garbage
  EXPECT_FALSE(parse_usize("x4").has_value());
  EXPECT_FALSE(parse_usize("0x10").has_value());  // no hex
  EXPECT_FALSE(parse_usize("3.5").has_value());
  EXPECT_FALSE(parse_usize("1 2").has_value());   // interior whitespace
  // One past the usize boundary, and an absurdly long digit string.
  EXPECT_FALSE(parse_usize("18446744073709551616").has_value());
  EXPECT_FALSE(parse_usize("99999999999999999999999999").has_value());
}

TEST(Env, EnvUsizeMatrixUnsetGarbageNegativeOverflow) {
  const char* kVar = "DNND_TEST_ENV_USIZE";
  ASSERT_EQ(unsetenv(kVar), 0);
  EXPECT_EQ(env_usize(kVar, 7), 7u);  // unset -> fallback

  ASSERT_EQ(setenv(kVar, "", 1), 0);
  EXPECT_EQ(env_usize(kVar, 7), 7u);  // empty -> fallback

  ASSERT_EQ(setenv(kVar, "12", 1), 0);
  EXPECT_EQ(env_usize(kVar, 7), 12u);  // well-formed -> value

  ASSERT_EQ(setenv(kVar, "0", 1), 0);
  EXPECT_EQ(env_usize(kVar, 7), 0u);  // explicit zero is a value, not garbage

  // Garbage / negative / overflow all warn (once) and fall back -- never a
  // silent partial parse like strtol's "4" from "4x" or 0 from "garbage".
  for (const char* bad : {"garbage", "-4", "4x", "18446744073709551616"}) {
    ASSERT_EQ(setenv(kVar, bad, 1), 0);
    EXPECT_EQ(env_usize(kVar, 7), 7u) << "value: " << bad;
  }
  ASSERT_EQ(unsetenv(kVar), 0);
}

TEST(Env, ParseFiniteDoubleAcceptsCanonicalDecimals) {
  EXPECT_DOUBLE_EQ(*parse_finite_double("0"), 0.0);
  EXPECT_DOUBLE_EQ(*parse_finite_double("0.01"), 0.01);
  EXPECT_DOUBLE_EQ(*parse_finite_double("-1.5"), -1.5);
  EXPECT_DOUBLE_EQ(*parse_finite_double("2e3"), 2000.0);
  EXPECT_DOUBLE_EQ(*parse_finite_double("-1.5e-9"), -1.5e-9);
  EXPECT_DOUBLE_EQ(*parse_finite_double("1.5E+2"), 150.0);
  EXPECT_DOUBLE_EQ(*parse_finite_double(" 3.25 "), 3.25);  // surrounding ws ok
  // Underflow to zero is representable, hence accepted.
  EXPECT_DOUBLE_EQ(*parse_finite_double("1e-999"), 0.0);
}

TEST(Env, ParseFiniteDoubleRejectsLaxStrtodInputs) {
  // Everything here parses "successfully" through bare strtod -- which is
  // exactly why each must be rejected by the strict contract.
  EXPECT_FALSE(parse_finite_double("0x8").has_value());      // hex float
  EXPECT_FALSE(parse_finite_double("0x1p3").has_value());
  EXPECT_FALSE(parse_finite_double("inf").has_value());
  EXPECT_FALSE(parse_finite_double("nan").has_value());
  EXPECT_FALSE(parse_finite_double("+5").has_value());       // sign prefix
  EXPECT_FALSE(parse_finite_double("1e999").has_value());    // overflow to inf
  EXPECT_FALSE(parse_finite_double("").has_value());
  EXPECT_FALSE(parse_finite_double("  ").has_value());
  EXPECT_FALSE(parse_finite_double("1e").has_value());       // partial exponent
  EXPECT_FALSE(parse_finite_double("1.").has_value());       // bare point
  EXPECT_FALSE(parse_finite_double(".5").has_value());       // no integer part
  EXPECT_FALSE(parse_finite_double("1.5x").has_value());     // trailing garbage
  EXPECT_FALSE(parse_finite_double("1 2").has_value());      // interior ws
}

TEST(Hash, StableHashIsStable) {
  EXPECT_EQ(stable_hash64("dnnd"), stable_hash64("dnnd"));
  EXPECT_NE(stable_hash64("dnnd"), stable_hash64("dnne"));
}

TEST(Hash, CombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2, 3), hash_combine(3, 2, 1));
}

TEST(Hash, ToUnitInRange) {
  for (u64 h : {0ull, 1ull, 0xFFFFFFFFFFFFFFFFull, 0x123456789ull}) {
    const double v = hash_to_unit(h);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Units, TimeLiteralsAndConversions) {
  EXPECT_EQ(1_ns, 1000_ps);
  EXPECT_EQ(1_us, 1000_ns);
  EXPECT_EQ(1_ms, 1000_us);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_DOUBLE_EQ(ps_to_ns(90'000), 90.0);
  EXPECT_DOUBLE_EQ(ps_to_ms(64'000'000'000), 64.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a   | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"x", "y"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(1150), "1,150");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1000), "-1,000");
  EXPECT_EQ(fmt_count(42), "42");
}

TEST(Table, FmtCountExtremesAndUnsigned) {
  // LLONG_MIN has no positive counterpart in long long; the old `-v`
  // negation was UB. The unsigned-negate fix must format it exactly.
  EXPECT_EQ(fmt_count(std::numeric_limits<long long>::min()),
            "-9,223,372,036,854,775,808");
  EXPECT_EQ(fmt_count(std::numeric_limits<long long>::max()),
            "9,223,372,036,854,775,807");
  // u64 values above 2^63 used to truncate through the long long cast at
  // call sites; the unsigned overload carries them exactly.
  EXPECT_EQ(fmt_count(std::numeric_limits<unsigned long long>::max()),
            "18,446,744,073,709,551,615");
  EXPECT_EQ(fmt_count(u64{10'000'000'000'000'000'000ull}), "10,000,000,000,000,000,000");
  // Dispatch template: smaller integral types pick their signedness.
  EXPECT_EQ(fmt_count(u32{4'000'000'000u}), "4,000,000,000");
  EXPECT_EQ(fmt_count(-1), "-1");
  EXPECT_EQ(fmt_count(usize{0}), "0");
}

TEST(Energy, PowerConversionExact) {
  // 1 fJ / 1 ps == 1 mW by construction.
  EXPECT_DOUBLE_EQ(average_power_mw(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(average_power_mw(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(average_power_mw(100, 0), 0.0);
}

TEST(Energy, ChannelCopyDwarfsRowClone) {
  const EnergyParams p = EnergyParams::ddr4();
  // RowClone's headline: in-DRAM copy is orders of magnitude cheaper than
  // moving a row over the channel.
  const Femtojoules channel = channel_row_copy_energy(p, 8192);
  EXPECT_GT(channel, 20 * p.aap);
}

TEST(Energy, LpddrCheaperIo) {
  const auto ddr4 = EnergyParams::ddr4();
  const auto lp = EnergyParams::lpddr4();
  EXPECT_LT(lp.offchip_transfer, ddr4.offchip_transfer);
  EXPECT_LT(lp.background_mw, ddr4.background_mw);
}

TEST(Latency, SwapIsThreeAaps) {
  const LatencyParams t;
  EXPECT_EQ(t.t_swap(), 3 * t.t_aap);
  EXPECT_EQ(t.t_aap, 90'000);  // 90 ns, paper Sec 5.1
}

}  // namespace
}  // namespace dnnd::sys
