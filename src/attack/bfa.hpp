// Progressive Bit Search -- the Bit-Flip Attack of Rakin et al. (ICCV'19),
// the attack the paper defends against.
//
// Each iteration: (1) compute bit gradients of the inference loss on the
// attack batch, (2) intra-layer search: per layer, the top-k bits by
// first-order loss gain, (3) inter-layer search: evaluate the candidates'
// *actual* loss by flipping/unflipping, (4) commit the argmax flip.
// The search stops when accuracy on the attack batch falls to the random
// guess level (the paper's "DNN malfunction") or the flip budget runs out.
//
// The loop itself lives in attack::ProbeEngine; this driver pairs it with
// the untargeted cross-entropy maximizer and the stop/budget policy.
#pragma once

#include <optional>

#include "attack/probe_engine.hpp"

namespace dnnd::attack {

struct BfaConfig {
  usize candidates_per_layer = 2;  ///< top-k per layer for the exact evaluation
  usize layers_evaluated = 6;      ///< evaluate only the best n layers by estimate
                                   ///< (0 = all layers; >0 is a perf knob that
                                   ///< rarely changes the argmax)
  usize max_flips = 60;
  double stop_accuracy = 0.0;      ///< stop when attack-batch accuracy <= this;
                                   ///< 0 = random-guess level (1/num_classes)
  bool verbose = false;
};

/// One committed flip.
struct FlipRecord {
  quant::BitLocation loc;
  double loss_before = 0.0;
  double loss_after = 0.0;
  double batch_accuracy_after = 0.0;
  /// True when no evaluated candidate raised the loss and the search fell
  /// back to the best first-order estimate (greedy escape; never re-flips a
  /// bit, so the search still terminates).
  bool fallback = false;
};

struct BfaResult {
  std::vector<FlipRecord> flips;
  double initial_batch_accuracy = 0.0;
  double final_batch_accuracy = 0.0;
  bool reached_stop = false;
};

class ProgressiveBitSearch {
 public:
  /// `attack_x`/`attack_y` is the attacker's sample batch (the paper uses 128
  /// test images; smaller batches trade precision for speed).
  ProgressiveBitSearch(quant::QuantizedModel& qm, nn::Tensor attack_x,
                       std::vector<u32> attack_y, BfaConfig cfg = {});

  /// Finds and commits the single best flip not in `skip` (and not flipped
  /// by this search before -- BFA keeps the hamming distance minimal and
  /// never re-flips). Returns nullopt when the candidate space is exhausted.
  std::optional<FlipRecord> step(const quant::BitSkipSet& skip);

  /// Runs `step` until the stop criterion; flips are committed in `qm`.
  BfaResult run(const quant::BitSkipSet& skip = {});

  [[nodiscard]] const BfaConfig& config() const { return cfg_; }
  [[nodiscard]] double stop_threshold() const;

 private:
  BfaConfig cfg_;
  UntargetedCeObjective objective_;
  ProbeEngine engine_;
};

}  // namespace dnnd::attack
