#include "sys/energy_model.hpp"

namespace dnnd::sys {

EnergyParams EnergyParams::ddr4() {
  EnergyParams p;
  // Derived from DDR4-2400 IDD values for an 8KB row device (order-of-
  // magnitude constants; the comparisons in the paper depend on ratios,
  // which these preserve: AAP ~ 2xACT, channel copy ~ 64x AAP).
  p.act = 1'900'000;         // 1.9 nJ per activate+restore
  p.pre = 600'000;           // 0.6 nJ
  p.rd_burst = 150'000;      // 150 pJ per 64B burst (core)
  p.wr_burst = 165'000;
  p.ref = 28'000'000;        // 28 nJ per REF
  p.aap = 3'800'000;         // 3.8 nJ: two back-to-back ACTs, no I/O
  p.sram_access = 12'000;    // 12 pJ per tracker access
  p.cam_access = 55'000;     // 55 pJ per associative search
  p.offchip_transfer = 420'000;  // 420 pJ per 64B over the channel (I/O + term.)
  p.background_mw = 110.0;
  return p;
}

EnergyParams EnergyParams::lpddr4() {
  EnergyParams p = ddr4();
  // LPDDR4: lower I/O swing and background power.
  p.rd_burst = 110'000;
  p.wr_burst = 120'000;
  p.offchip_transfer = 210'000;
  p.background_mw = 55.0;
  return p;
}

Femtojoules channel_row_copy_energy(const EnergyParams& p, usize row_bytes) {
  const usize bursts = (row_bytes + 63) / 64;
  // Read path: ACT + bursts out over channel; write path: bursts back + restore.
  Femtojoules e = p.act + p.pre;
  e += static_cast<Femtojoules>(bursts) * (p.rd_burst + p.offchip_transfer);
  e += static_cast<Femtojoules>(bursts) * (p.wr_burst + p.offchip_transfer);
  e += p.act + p.pre;  // destination row open/restore
  return e;
}

double average_power_mw(Femtojoules energy, Picoseconds duration) {
  if (duration <= 0) return 0.0;
  // fJ / ps = mW exactly: 1e-15 J / 1e-12 s = 1e-3 W.
  return static_cast<double>(energy) / static_cast<double>(duration);
}

}  // namespace dnnd::sys
