#include "nn/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "sys/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DNND_SIMD_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define DNND_SIMD_NEON 1
#endif

namespace dnnd::nn::simd {

namespace {

constexpr usize kNr = 8;  ///< lanes per panel line, matching gemm's panel width
constexpr usize kMr = 8;  ///< A rows per register tile

// ---- scalar reference microkernels -----------------------------------------
// These ARE the semantics: every other variant below performs the same IEEE
// multiply and add per (i, k, r), k strictly ascending per accumulator. The
// build compiles with -ffp-contract=off, so `acc += av * p[r]` can never be
// silently fused into an FMA behind the contract's back.

void tile8_scalar(usize K, const float* const* a, const float* panel, float* acc) {
  for (usize k = 0; k < K; ++k, panel += kNr) {
    for (usize i = 0; i < kMr; ++i) {
      const float av = a[i][k];
      float* c = acc + i * kNr;
      for (usize r = 0; r < kNr; ++r) c[r] += av * panel[r];
    }
  }
}

void row1_scalar(usize K, const float* a, const float* panel, float* acc) {
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float av = a[k];
    for (usize r = 0; r < kNr; ++r) acc[r] += av * panel[r];
  }
}

// ---- AVX2 -------------------------------------------------------------------
// One ymm register per A row holds all eight column accumulators; each k step
// loads one panel line and broadcasts one A element per row. mul then add as
// two distinct instructions keeps the two-rounding scalar semantics; the
// *_fma variants are the opt-in single-rounding fast path.

#ifdef DNND_SIMD_X86

__attribute__((target("avx2"))) void tile8_avx2(usize K, const float* const* a,
                                                const float* panel, float* acc) {
  __m256 c[kMr];
  for (usize i = 0; i < kMr; ++i) c[i] = _mm256_loadu_ps(acc + i * kNr);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const __m256 b = _mm256_loadu_ps(panel);
    for (usize i = 0; i < kMr; ++i) {
      c[i] = _mm256_add_ps(c[i], _mm256_mul_ps(_mm256_set1_ps(a[i][k]), b));
    }
  }
  for (usize i = 0; i < kMr; ++i) _mm256_storeu_ps(acc + i * kNr, c[i]);
}

__attribute__((target("avx2"))) void row1_avx2(usize K, const float* a, const float* panel,
                                               float* acc) {
  __m256 c = _mm256_loadu_ps(acc);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    c = _mm256_add_ps(c, _mm256_mul_ps(_mm256_set1_ps(a[k]), _mm256_loadu_ps(panel)));
  }
  _mm256_storeu_ps(acc, c);
}

__attribute__((target("avx2,fma"))) void tile8_avx2_fma(usize K, const float* const* a,
                                                        const float* panel, float* acc) {
  __m256 c[kMr];
  for (usize i = 0; i < kMr; ++i) c[i] = _mm256_loadu_ps(acc + i * kNr);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const __m256 b = _mm256_loadu_ps(panel);
    for (usize i = 0; i < kMr; ++i) {
      c[i] = _mm256_fmadd_ps(_mm256_set1_ps(a[i][k]), b, c[i]);
    }
  }
  for (usize i = 0; i < kMr; ++i) _mm256_storeu_ps(acc + i * kNr, c[i]);
}

__attribute__((target("avx2,fma"))) void row1_avx2_fma(usize K, const float* a,
                                                       const float* panel, float* acc) {
  __m256 c = _mm256_loadu_ps(acc);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    c = _mm256_fmadd_ps(_mm256_set1_ps(a[k]), _mm256_loadu_ps(panel), c);
  }
  _mm256_storeu_ps(acc, c);
}

#endif  // DNND_SIMD_X86

// ---- int8 microkernels ------------------------------------------------------
// Scalar reference: int32 accumulation is exact and associative, so any
// reordering (including the AVX2 variant's lane assignment) produces the
// same bytes -- the simd-vs-scalar byte gate needs no accumulation-order
// argument here, only that every variant sums the same products.

constexpr usize kQuad = 4;  ///< codes per panel quad (one maddubs/madd step)

void i8_tile8_scalar(usize KQ, const i8* a, usize astride, const i8* panel, i32* acc) {
  for (usize kq = 0; kq < KQ; ++kq, panel += kNr * kQuad, a += astride) {
    for (usize i = 0; i < kMr; ++i) {
      const i8* ai = a + i * kQuad;
      i32* c = acc + i * kNr;
      for (usize r = 0; r < kNr; ++r) {
        const i8* w = panel + r * kQuad;
        c[r] += static_cast<i32>(ai[0]) * w[0] + static_cast<i32>(ai[1]) * w[1] +
                static_cast<i32>(ai[2]) * w[2] + static_cast<i32>(ai[3]) * w[3];
      }
    }
  }
}

void i8_row1_scalar(usize KQ, const i8* a, usize astride, const i8* panel, i32* acc) {
  for (usize kq = 0; kq < KQ; ++kq, panel += kNr * kQuad, a += astride) {
    for (usize r = 0; r < kNr; ++r) {
      const i8* w = panel + r * kQuad;
      acc[r] += static_cast<i32>(a[0]) * w[0] + static_cast<i32>(a[1]) * w[1] +
                static_cast<i32>(a[2]) * w[2] + static_cast<i32>(a[3]) * w[3];
    }
  }
}

#ifdef DNND_SIMD_X86

// One panel line = 32 bytes = 8 columns x 4 k-codes; maddubs wants an
// unsigned first operand, so the WEIGHT bytes go through abs (|-128| = 128
// is a valid u8) and the sign transfers onto the broadcast activation quad
// via sign_epi8 -- safe because activations are clamped to [-127, 127], so
// the negation can never wrap. madd then folds the two s16 pair-sums per
// column into the s32 lane; pair sums are bounded by 2*128*127 = 32512, so
// maddubs never saturates and the arithmetic is exact.

__attribute__((target("avx2"))) inline __m256i i8_quad_product(__m256i wv, __m256i wabs,
                                                               const i8* a_quad) {
  u32 quad;
  __builtin_memcpy(&quad, a_quad, sizeof(quad));
  const __m256i av = _mm256_set1_epi32(static_cast<int>(quad));
  const __m256i pair = _mm256_maddubs_epi16(wabs, _mm256_sign_epi8(av, wv));
  return _mm256_madd_epi16(pair, _mm256_set1_epi16(1));
}

__attribute__((target("avx2"))) void i8_tile8_avx2(usize KQ, const i8* a, usize astride,
                                                   const i8* panel, i32* acc) {
  __m256i c[kMr];
  for (usize i = 0; i < kMr; ++i) {
    c[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i * kNr));
  }
  for (usize kq = 0; kq < KQ; ++kq, panel += kNr * kQuad, a += astride) {
    const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(panel));
    const __m256i wabs = _mm256_abs_epi8(wv);
    for (usize i = 0; i < kMr; ++i) {
      c[i] = _mm256_add_epi32(c[i], i8_quad_product(wv, wabs, a + i * kQuad));
    }
  }
  for (usize i = 0; i < kMr; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kNr), c[i]);
  }
}

__attribute__((target("avx2"))) void i8_row1_avx2(usize KQ, const i8* a, usize astride,
                                                  const i8* panel, i32* acc) {
  __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc));
  for (usize kq = 0; kq < KQ; ++kq, panel += kNr * kQuad, a += astride) {
    const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(panel));
    c = _mm256_add_epi32(c, i8_quad_product(wv, _mm256_abs_epi8(wv), a));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc), c);
}

#endif  // DNND_SIMD_X86

// ---- int8 activation quantization -------------------------------------------
// dst[i] = trunc(clamp(src[i]*inv, -127, 127) + copysign(0.5, .)) -- round to
// nearest, ties away from zero. Multiply, min/max, add, and truncation are
// all exactly-specified IEEE ops applied element-wise in the same order by
// both variants, so scalar and AVX2 produce identical bytes on any input.
// (For |v| <= 127 the +-0.5 addition is exact -- 0.5 is a multiple of the
// ulp at that magnitude -- so trunc(v + copysign(0.5, v)) == lround(v).)

inline i8 quantize_code(float x, float inv) {
  float v = x * inv;
  v = std::min(std::max(v, -127.0f), 127.0f);
  return static_cast<i8>(static_cast<int>(v + std::copysign(0.5f, v)));
}

/// Quad-major panel slot of code (m, k): mirrors gemm::packed_a_q8_index
/// (which cannot be used here -- simd sits below gemm).
inline usize a_panel_slot(usize m, usize k, usize M) {
  return (k / kQuad) * M * kQuad + m * kQuad + k % kQuad;
}

void quantize_panel_i8_scalar(const float* A, usize M, usize K, usize lda, float inv,
                              i8* out) {
  const usize K4 = (K + kQuad - 1) & ~(kQuad - 1);
  for (usize m = 0; m < M; ++m) {
    const float* src = A + m * lda;
    for (usize k = 0; k < K; ++k) out[a_panel_slot(m, k, M)] = quantize_code(src[k], inv);
    for (usize k = K; k < K4; ++k) out[a_panel_slot(m, k, M)] = 0;
  }
}

#ifdef DNND_SIMD_X86

__attribute__((target("avx2"))) void quantize_panel_i8_avx2(const float* A, usize M, usize K,
                                                            usize lda, float inv, i8* out) {
  const usize K4 = (K + kQuad - 1) & ~(kQuad - 1);
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 lo = _mm256_set1_ps(-127.0f), hi = _mm256_set1_ps(127.0f);
  const __m256 sign_mask = _mm256_set1_ps(-0.0f), half = _mm256_set1_ps(0.5f);
  const usize quad_stride = M * kQuad;
  for (usize m = 0; m < M; ++m) {
    const float* src = A + m * lda;
    i8* row0 = out + m * kQuad;  // this row's slot inside quad 0
    usize k = 0;
    // 8-wide body (two quads per iteration): short GEMM K (a conv patch can
    // be a few dozen taps) must still vectorize, so the granule is one
    // vector, not four. The two dword stores land in consecutive quads.
    for (; k + 8 <= K; k += 8) {
      __m256 v = _mm256_mul_ps(_mm256_loadu_ps(src + k), vinv);
      v = _mm256_min_ps(_mm256_max_ps(v, lo), hi);
      const __m256 h = _mm256_or_ps(_mm256_and_ps(v, sign_mask), half);
      const __m256i q = _mm256_cvttps_epi32(_mm256_add_ps(v, h));
      const __m128i p16 =
          _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
      const __m128i p8 = _mm_packs_epi16(p16, p16);
      i8* dst = row0 + (k / kQuad) * quad_stride;
      const int d0 = _mm_cvtsi128_si32(p8), d1 = _mm_extract_epi32(p8, 1);
      __builtin_memcpy(dst, &d0, sizeof(d0));
      __builtin_memcpy(dst + quad_stride, &d1, sizeof(d1));
    }
    for (; k < K; ++k) out[a_panel_slot(m, k, M)] = quantize_code(src[k], inv);
    for (; k < K4; ++k) out[a_panel_slot(m, k, M)] = 0;
  }
}

#endif  // DNND_SIMD_X86

// ---- quad interleave (transpose-to-panel) -----------------------------------
// out[(kq*P + p)*4 + j] = T[(4kq + j)*P + p]: four T rows zip into P
// contiguous dwords. Pure byte movement -- the SSE2 unpack ladder (baseline
// x86-64, no dispatch needed) and the portable loop are byte-identical on
// any input.

#ifndef DNND_SIMD_X86
void interleave_quads_i8_portable(const i8* T, usize P, usize KQ, i8* out) {
  for (usize kq = 0; kq < KQ; ++kq) {
    const i8* r0 = T + (kq * kQuad + 0) * P;
    const i8* r1 = T + (kq * kQuad + 1) * P;
    const i8* r2 = T + (kq * kQuad + 2) * P;
    const i8* r3 = T + (kq * kQuad + 3) * P;
    i8* dst = out + kq * P * kQuad;
    for (usize p = 0; p < P; ++p) {
      dst[p * kQuad + 0] = r0[p];
      dst[p * kQuad + 1] = r1[p];
      dst[p * kQuad + 2] = r2[p];
      dst[p * kQuad + 3] = r3[p];
    }
  }
}
#endif  // !DNND_SIMD_X86

#ifdef DNND_SIMD_X86

void interleave_quads_i8_sse2(const i8* T, usize P, usize KQ, i8* out) {
  for (usize kq = 0; kq < KQ; ++kq) {
    const i8* r0 = T + (kq * kQuad + 0) * P;
    const i8* r1 = T + (kq * kQuad + 1) * P;
    const i8* r2 = T + (kq * kQuad + 2) * P;
    const i8* r3 = T + (kq * kQuad + 3) * P;
    i8* dst = out + kq * P * kQuad;
    usize p = 0;
    for (; p + 16 <= P; p += 16) {
      const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + p));
      const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + p));
      const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + p));
      const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + p));
      const __m128i ab_lo = _mm_unpacklo_epi8(a, b), ab_hi = _mm_unpackhi_epi8(a, b);
      const __m128i cd_lo = _mm_unpacklo_epi8(c, d), cd_hi = _mm_unpackhi_epi8(c, d);
      __m128i* q = reinterpret_cast<__m128i*>(dst + p * kQuad);
      _mm_storeu_si128(q + 0, _mm_unpacklo_epi16(ab_lo, cd_lo));
      _mm_storeu_si128(q + 1, _mm_unpackhi_epi16(ab_lo, cd_lo));
      _mm_storeu_si128(q + 2, _mm_unpacklo_epi16(ab_hi, cd_hi));
      _mm_storeu_si128(q + 3, _mm_unpackhi_epi16(ab_hi, cd_hi));
    }
    for (; p < P; ++p) {
      dst[p * kQuad + 0] = r0[p];
      dst[p * kQuad + 1] = r1[p];
      dst[p * kQuad + 2] = r2[p];
      dst[p * kQuad + 3] = r3[p];
    }
  }
}

#endif  // DNND_SIMD_X86

// ---- NEON -------------------------------------------------------------------
// Eight lanes = two q registers per A row. vmul+vadd (not vmla, which the
// compiler may emit as fused FMLA) for the bit-transparent path; vfma for the
// opt-in fast path.

#ifdef DNND_SIMD_NEON

void tile8_neon(usize K, const float* const* a, const float* panel, float* acc) {
  float32x4_t lo[kMr], hi[kMr];
  for (usize i = 0; i < kMr; ++i) {
    lo[i] = vld1q_f32(acc + i * kNr);
    hi[i] = vld1q_f32(acc + i * kNr + 4);
  }
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t blo = vld1q_f32(panel), bhi = vld1q_f32(panel + 4);
    for (usize i = 0; i < kMr; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i][k]);
      lo[i] = vaddq_f32(lo[i], vmulq_f32(av, blo));
      hi[i] = vaddq_f32(hi[i], vmulq_f32(av, bhi));
    }
  }
  for (usize i = 0; i < kMr; ++i) {
    vst1q_f32(acc + i * kNr, lo[i]);
    vst1q_f32(acc + i * kNr + 4, hi[i]);
  }
}

void row1_neon(usize K, const float* a, const float* panel, float* acc) {
  float32x4_t lo = vld1q_f32(acc), hi = vld1q_f32(acc + 4);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t av = vdupq_n_f32(a[k]);
    lo = vaddq_f32(lo, vmulq_f32(av, vld1q_f32(panel)));
    hi = vaddq_f32(hi, vmulq_f32(av, vld1q_f32(panel + 4)));
  }
  vst1q_f32(acc, lo);
  vst1q_f32(acc + 4, hi);
}

void tile8_neon_fma(usize K, const float* const* a, const float* panel, float* acc) {
  float32x4_t lo[kMr], hi[kMr];
  for (usize i = 0; i < kMr; ++i) {
    lo[i] = vld1q_f32(acc + i * kNr);
    hi[i] = vld1q_f32(acc + i * kNr + 4);
  }
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t blo = vld1q_f32(panel), bhi = vld1q_f32(panel + 4);
    for (usize i = 0; i < kMr; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i][k]);
      lo[i] = vfmaq_f32(lo[i], av, blo);
      hi[i] = vfmaq_f32(hi[i], av, bhi);
    }
  }
  for (usize i = 0; i < kMr; ++i) {
    vst1q_f32(acc + i * kNr, lo[i]);
    vst1q_f32(acc + i * kNr + 4, hi[i]);
  }
}

void row1_neon_fma(usize K, const float* a, const float* panel, float* acc) {
  float32x4_t lo = vld1q_f32(acc), hi = vld1q_f32(acc + 4);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t av = vdupq_n_f32(a[k]);
    lo = vfmaq_f32(lo, av, vld1q_f32(panel));
    hi = vfmaq_f32(hi, av, vld1q_f32(panel + 4));
  }
  vst1q_f32(acc, lo);
  vst1q_f32(acc + 4, hi);
}

#endif  // DNND_SIMD_NEON

// ---- dispatch ---------------------------------------------------------------

std::atomic<int> g_scalar_override{-1};  ///< -1 env, 0 simd on, 1 scalar
std::atomic<int> g_fma_override{-1};     ///< -1 env, 0 off, 1 on
std::atomic<int> g_int8_override{-1};    ///< -1 env, 0 off, 1 integer path

/// CPUID results never change mid-process; probe once.
struct CpuCaps {
  Isa isa = Isa::kScalar;
  bool fma = false;
};

CpuCaps detect_caps() {
  CpuCaps caps;
#if defined(DNND_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) {
    caps.isa = Isa::kAvx2;
    caps.fma = __builtin_cpu_supports("fma");
  }
#elif defined(DNND_SIMD_NEON)
  caps.isa = Isa::kNeon;
  caps.fma = true;
#endif
  return caps;
}

const CpuCaps& caps() {
  static const CpuCaps c = detect_caps();
  return c;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "scalar";
}

Isa best_isa() { return caps().isa; }

void set_scalar_override(int v) { g_scalar_override.store(v, std::memory_order_relaxed); }
int scalar_override() { return g_scalar_override.load(std::memory_order_relaxed); }

bool force_scalar() {
  const int v = g_scalar_override.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return sys::env_usize("DNND_SIMD", 1) == 0;
}

void set_fma_override(int v) { g_fma_override.store(v, std::memory_order_relaxed); }
int fma_override() { return g_fma_override.load(std::memory_order_relaxed); }

bool fma_enabled() {
  const int v = g_fma_override.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return sys::env_usize("DNND_FMA", 0) != 0;
}

void set_int8_override(int v) { g_int8_override.store(v, std::memory_order_relaxed); }
int int8_override() { return g_int8_override.load(std::memory_order_relaxed); }

bool int8_enabled() {
  const int v = g_int8_override.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return sys::env_usize("DNND_INT8", 0) != 0;
}

Isa active_isa() { return force_scalar() ? Isa::kScalar : best_isa(); }

Kernels active_kernels() {
  const Isa isa = active_isa();
  const bool fuse = fma_enabled() && caps().fma;
  switch (isa) {
#ifdef DNND_SIMD_X86
    case Isa::kAvx2:
      if (fuse) return {tile8_avx2_fma, row1_avx2_fma, isa, true};
      return {tile8_avx2, row1_avx2, isa, false};
#endif
#ifdef DNND_SIMD_NEON
    case Isa::kNeon:
      if (fuse) return {tile8_neon_fma, row1_neon_fma, isa, true};
      return {tile8_neon, row1_neon, isa, false};
#endif
    default:
      break;
  }
  // Scalar never fuses: the fast path only exists where a fused instruction
  // does, and the scalar path doubles as the byte-identity reference.
  return {tile8_scalar, row1_scalar, Isa::kScalar, false};
}

I8Kernels active_int8_kernels() {
#ifdef DNND_SIMD_X86
  // Only AVX2 has a vector int8 variant; NEON (no sdot baseline on our
  // minimum target) and scalar share the reference loops -- which is fine,
  // because the int8 byte gate only needs the variants to agree, and the
  // scalar quad loop already autovectorizes reasonably.
  if (!force_scalar() && caps().isa == Isa::kAvx2) {
    return {i8_tile8_avx2, i8_row1_avx2, Isa::kAvx2};
  }
#endif
  return {i8_tile8_scalar, i8_row1_scalar, Isa::kScalar};
}

void quantize_panel_i8(const float* A, usize M, usize K, usize lda, float inv, i8* out) {
#ifdef DNND_SIMD_X86
  if (!force_scalar() && caps().isa == Isa::kAvx2) {
    quantize_panel_i8_avx2(A, M, K, lda, inv, out);
    return;
  }
#endif
  quantize_panel_i8_scalar(A, M, K, lda, inv, out);
}

void interleave_quads_i8(const i8* T, usize P, usize KQ, i8* out) {
#ifdef DNND_SIMD_X86
  interleave_quads_i8_sse2(T, P, KQ, out);
#else
  interleave_quads_i8_portable(T, P, KQ, out);
#endif
}

}  // namespace dnnd::nn::simd
